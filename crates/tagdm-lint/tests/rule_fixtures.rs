//! Fixture tests: for every rule, one snippet that passes and one that fires.
//!
//! These go through the public `lint_files` API with workspace-shaped fake paths, so
//! they also pin the per-rule path scoping (e.g. TH01 only polices
//! `crates/tagdm-engine/src/`).

use tagdm_lint::lock_order::DeclaredEdge;
use tagdm_lint::report::Finding;
use tagdm_lint::{lint_files, SourceFile};

const HIERARCHY: &str = "crates/tagdm-lint/lock_order.toml";

/// Lint one (path, source) file with `declared` edges, keeping only `rule` findings.
fn run_rule(rule: &str, path: &str, source: &str, declared: &[DeclaredEdge]) -> Vec<Finding> {
    let files = vec![SourceFile::parse(path, source)];
    lint_files(&files, declared, HIERARCHY, &[])
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect()
}

fn edge(from: &str, to: &str) -> DeclaredEdge {
    DeclaredEdge {
        from: from.into(),
        to: to.into(),
        line: 1,
    }
}

// ---------------------------------------------------------------- LK01

#[test]
fn lk01_fires_on_panicking_acquisition() {
    let bad = r#"
        fn f(m: &std::sync::Mutex<u32>) -> u32 {
            *m.lock().unwrap()
        }
    "#;
    let findings = run_rule("LK01", "crates/tagdm-engine/src/x.rs", bad, &[]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].line, 3);
    assert!(findings[0].message.contains("poison"));
}

#[test]
fn lk01_passes_recovering_acquisition_and_ignores_strings_and_io_read() {
    let good = r#"
        fn f(m: &std::sync::Mutex<u32>) -> u32 {
            *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
        fn g(r: &mut impl std::io::Read, buf: &mut [u8]) {
            r.read(buf).unwrap(); // has an argument: io read, not a lock
            let _ = "docs: .lock().unwrap() inside a string is inert";
        }
    "#;
    assert!(run_rule("LK01", "crates/tagdm-engine/src/x.rs", good, &[]).is_empty());
}

// ---------------------------------------------------------------- LK02

#[test]
fn lk02_fires_on_undeclared_nesting_and_detects_injected_abba_cycle() {
    // fn first: a then b; fn second: b then a — classic ABBA.
    let bad = r#"
        struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
        impl S {
            fn first(&self) {
                let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let gb = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                drop(gb);
                drop(ga);
            }
            fn second(&self) {
                let gb = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                drop(ga);
                drop(gb);
            }
        }
    "#;
    // Neither edge declared: both reported as undeclared, plus the cycle.
    let findings = run_rule("LK02", "crates/tagdm-engine/src/s.rs", bad, &[]);
    assert!(
        findings.iter().any(|f| f.message.contains("not declared")),
        "{findings:?}"
    );
    let cycle = findings
        .iter()
        .find(|f| f.message.contains("cycle"))
        .expect("ABBA cycle must be detected");
    assert!(cycle.message.contains("a") && cycle.message.contains("b"));

    // Declaring both directions doesn't make it legal: the union stays cyclic.
    let declared = [edge("a", "b"), edge("b", "a")];
    let findings = run_rule("LK02", "crates/tagdm-engine/src/s.rs", bad, &declared);
    assert!(
        findings.iter().any(|f| f.message.contains("cycle")),
        "declared cycle must still be flagged: {findings:?}"
    );
}

#[test]
fn lk02_passes_declared_nesting_and_guard_scopes_end_edges() {
    let good = r#"
        struct S { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }
        impl S {
            fn nested_declared(&self) {
                let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let gb = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                drop(gb);
                drop(ga);
            }
            fn sequential_not_nested(&self) {
                let gb = self.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                drop(gb);
                let ga = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                drop(ga);
            }
        }
    "#;
    let declared = [edge("a", "b")];
    let findings = run_rule("LK02", "crates/tagdm-engine/src/s.rs", good, &declared);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lk02_fires_on_self_reacquisition() {
    let bad = r#"
        struct S { a: std::sync::Mutex<u32> }
        impl S {
            fn twice(&self) {
                let g1 = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let g2 = self.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                drop(g2);
                drop(g1);
            }
        }
    "#;
    let findings = run_rule("LK02", "crates/tagdm-engine/src/s.rs", bad, &[]);
    assert!(
        findings.iter().any(|f| f.message.contains("not reentrant")),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------- ER01

#[test]
fn er01_fires_on_unclassified_variant_and_wildcard() {
    let bad = r#"
        pub enum EngineError {
            Shutdown,
            Overloaded { depth: usize },
            BrandNew(String),
        }
        impl EngineError {
            pub fn is_transient(&self) -> bool {
                match self {
                    EngineError::Overloaded { .. } => true,
                    EngineError::Shutdown => false,
                    _ => false,
                }
            }
        }
    "#;
    let findings = run_rule("ER01", "crates/tagdm-engine/src/error.rs", bad, &[]);
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("BrandNew") && f.message.contains("not classified")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("wildcard")),
        "{findings:?}"
    );
}

#[test]
fn er01_passes_exhaustive_classifier_and_skips_files_without_the_enum() {
    let good = r#"
        pub enum EngineError {
            Shutdown,
            Overloaded { depth: usize },
        }
        impl EngineError {
            pub fn is_transient(&self) -> bool {
                match self {
                    EngineError::Overloaded { .. } => true,
                    EngineError::Shutdown => false,
                }
            }
        }
    "#;
    assert!(run_rule("ER01", "crates/tagdm-engine/src/error.rs", good, &[]).is_empty());
    // A file that merely *uses* the enum is not in scope.
    let user = "fn f(e: &EngineError) -> bool { e.is_transient() }";
    assert!(run_rule("ER01", "crates/tagdm-engine/src/other.rs", user, &[]).is_empty());
}

// ---------------------------------------------------------------- FP01

const FP_REGISTRY_OK: &str = r#"
    pub mod site {
        pub const WORKER_LOOP: &str = "worker.loop";
    }
"#;

#[test]
fn fp01_fires_on_unused_sites_inline_names_and_duplicates() {
    let registry = r#"
        pub mod site {
            pub const WORKER_LOOP: &str = "worker.loop";
            pub const ORPHAN: &str = "worker.loop";
        }
    "#;
    let source = r#"
        fn run() {
            crate::failpoint::check("inline.name");
            crate::failpoint::check(site::WORKER_LOOP);
            let _ = site::UNDECLARED;
        }
    "#;
    let files = vec![
        SourceFile::parse("crates/tagdm-engine/src/failpoint.rs", registry),
        SourceFile::parse("crates/tagdm-engine/src/worker.rs", source),
    ];
    let findings: Vec<Finding> = lint_files(&files, &[], HIERARCHY, &[])
        .into_iter()
        .filter(|f| f.rule == "FP01")
        .collect();
    assert!(
        findings.iter().any(|f| f.message.contains("duplicates")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("inline")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("UNDECLARED") && f.message.contains("not declared")),
        "{findings:?}"
    );
    // WORKER_LOOP has a source ref but no test ref; ORPHAN has neither.
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("WORKER_LOOP") && f.message.contains("no test reference")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("ORPHAN") && f.message.contains("never evaluated")),
        "{findings:?}"
    );
}

#[test]
fn fp01_passes_when_every_site_is_declared_used_and_tested() {
    let source = "fn run() { crate::failpoint::check(site::WORKER_LOOP); }";
    let test = "#[test]\nfn t() { arm(site::WORKER_LOOP); }";
    let files = vec![
        SourceFile::parse("crates/tagdm-engine/src/failpoint.rs", FP_REGISTRY_OK),
        SourceFile::parse("crates/tagdm-engine/src/worker.rs", source),
        SourceFile::parse("crates/tagdm-engine/tests/faults.rs", test),
    ];
    let findings: Vec<Finding> = lint_files(&files, &[], HIERARCHY, &[])
        .into_iter()
        .filter(|f| f.rule == "FP01")
        .collect();
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------- TH01

#[test]
fn th01_fires_on_raw_spawn_in_engine_but_not_in_thread_owner_modules() {
    let bad = "fn go() { std::thread::spawn(|| {}); }";
    let findings = run_rule("TH01", "crates/tagdm-engine/src/worker.rs", bad, &[]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("unsupervised"));

    // Same code is fine in the executor (the designated thread owner) …
    assert!(run_rule("TH01", "crates/tagdm-engine/src/executor.rs", bad, &[]).is_empty());
    // … and outside the policed trees entirely.
    assert!(run_rule("TH01", "crates/tagdm-bench/src/main.rs", bad, &[]).is_empty());
}

#[test]
fn th01_polices_the_net_transport_with_its_own_thread_owners() {
    let bad = "fn go() { std::thread::spawn(|| {}); }";
    // A raw spawn in a non-owner transport module is an unsupervised thread …
    let findings = run_rule("TH01", "crates/tagdm-net/src/client.rs", bad, &[]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("server/conn"));

    // … while the acceptor and connection-handler owners may spawn.
    assert!(run_rule("TH01", "crates/tagdm-net/src/server.rs", bad, &[]).is_empty());
    assert!(run_rule("TH01", "crates/tagdm-net/src/conn.rs", bad, &[]).is_empty());
}

// ---------------------------------------------------------------- SL01

#[test]
fn sl01_fires_on_sleep_in_solver_hot_path_only() {
    let bad = "fn solve() { std::thread::sleep(std::time::Duration::from_millis(1)); }";
    let findings = run_rule("SL01", "crates/tagdm-core/src/solvers/exact.rs", bad, &[]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("admission"));

    // Sleeps in tests / other crates are out of scope.
    assert!(run_rule("SL01", "crates/tagdm-engine/tests/chaos.rs", bad, &[]).is_empty());
    assert!(run_rule("SL01", "crates/tagdm-core/src/problem.rs", bad, &[]).is_empty());
}

// ---------------------------------------------------------------- AL01

#[test]
fn al01_fires_on_bare_allow_and_accepts_adjacent_comments() {
    let bad = r#"
        #[allow(dead_code)]
        fn unused() {}
    "#;
    let findings = run_rule("AL01", "crates/tagdm-core/src/x.rs", bad, &[]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("justification"));

    let good = r#"
        // kept for the serde shim's derive output, which references it
        #[allow(dead_code)]
        fn unused() {}

        #[allow(dead_code)] // justified inline on the same line
        fn also_unused() {}

        /// Doc comments count as justification too.
        #[allow(dead_code)]
        fn documented() {}
    "#;
    assert!(run_rule("AL01", "crates/tagdm-core/src/x.rs", good, &[]).is_empty());
}

// ---------------------------------------------------------------- skip plumbing

#[test]
fn skip_disables_a_rule_without_touching_others() {
    let bad = r#"
        fn f(m: &std::sync::Mutex<u32>) {
            #[allow(dead_code)]
            let g = m.lock().unwrap();
            drop(g);
        }
    "#;
    let files = vec![SourceFile::parse("crates/tagdm-engine/src/x.rs", bad)];
    let all = lint_files(&files, &[], HIERARCHY, &[]);
    assert!(all.iter().any(|f| f.rule == "LK01"));
    assert!(all.iter().any(|f| f.rule == "AL01"));

    let skipped = lint_files(&files, &[], HIERARCHY, &["LK01".to_string()]);
    assert!(!skipped.iter().any(|f| f.rule == "LK01"));
    assert!(skipped.iter().any(|f| f.rule == "AL01"));
}
