//! Property-based integration tests over randomly generated corpora: the dual mining
//! framework's structural invariants must hold for *any* tagging data, not just the
//! hand-built fixtures.

use proptest::prelude::*;

use tagdm::prelude::*;

/// Strategy: a small random corpus with `users` users, `items` items and `actions`
/// tagging actions over a tiny vocabulary — adversarially small so that edge cases
/// (single-action groups, empty overlaps) actually occur.
fn arbitrary_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..6, 2usize..6, 5usize..40, 0u64..1000).prop_map(|(users, items, actions, seed)| {
        let config = GeneratorConfig {
            num_users: users,
            num_items: items,
            num_actions: actions,
            vocab_size: 30,
            num_topics: 4,
            mean_tags_per_action: 2.0,
            num_occupations: 3,
            num_states: 3,
            num_genres: 3,
            num_actors: 4,
            num_directors: 3,
            zipf_exponent: 1.05,
            genre_topic_weight: 0.5,
            demographic_topic_weight: 0.3,
            rating_fraction: 0.5,
            seed,
        };
        MovieLensStyleGenerator::new(config).generate()
    })
}

fn context_for(dataset: &Dataset) -> MiningContext {
    let groups = GroupingScheme::over(dataset, &[("user", "gender"), ("item", "genre")])
        .unwrap()
        .enumerate(dataset);
    MiningContext::build(dataset, groups, SummarizerChoice::FrequencyNormalized)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pairwise_scores_are_bounded_and_dual(dataset in arbitrary_dataset()) {
        let ctx = context_for(&dataset);
        for a in 0..ctx.num_groups() {
            for b in 0..ctx.num_groups() {
                for dim in [TaggingDimension::Users, TaggingDimension::Items, TaggingDimension::Tags] {
                    let kind = PairwiseKind::default_for(dim);
                    let sim = ctx.pairwise_score(dim, MiningCriterion::Similarity, kind, a, b);
                    let div = ctx.pairwise_score(dim, MiningCriterion::Diversity, kind, a, b);
                    prop_assert!((0.0..=1.0).contains(&sim), "sim {sim} out of range");
                    prop_assert!((0.0..=1.0).contains(&div), "div {div} out of range");
                    prop_assert!((sim + div - 1.0).abs() < 1e-9);
                    // Symmetry.
                    let sim_ba = ctx.pairwise_score(dim, MiningCriterion::Similarity, kind, b, a);
                    prop_assert!((sim - sim_ba).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn group_support_never_exceeds_the_corpus(dataset in arbitrary_dataset()) {
        let ctx = context_for(&dataset);
        let all: Vec<usize> = (0..ctx.num_groups()).collect();
        let support = ctx.support(&all);
        prop_assert!(support <= dataset.num_actions());
        // Full-coverage grouping schemes partition the corpus, so the union is everything.
        prop_assert_eq!(support, dataset.num_actions());
        // Support is monotone under set inclusion.
        if ctx.num_groups() >= 2 {
            prop_assert!(ctx.support(&all[..1]) <= ctx.support(&all[..2]));
        }
    }

    #[test]
    fn exact_dominates_heuristics_on_feasible_instances(dataset in arbitrary_dataset()) {
        let ctx = context_for(&dataset);
        prop_assume!(ctx.num_groups() >= 2);
        let params = ProblemParams { k: 2, min_support: 1, user_threshold: 0.0, item_threshold: 0.0 };
        for problem in [catalog::problem_1(params), catalog::problem_6(params)] {
            let exact = ExactSolver::new().solve(&ctx, &problem);
            let lsh = SmLshSolver::new(ConstraintMode::Fold).solve(&ctx, &problem);
            let fdp = DvFdpSolver::new(ConstraintMode::Fold).solve(&ctx, &problem);
            for heuristic in [&lsh, &fdp] {
                if !heuristic.is_null() && !exact.is_null() {
                    prop_assert!(heuristic.objective <= exact.objective + 1e-9);
                }
            }
        }
    }

    #[test]
    fn solver_outcomes_reference_valid_groups(dataset in arbitrary_dataset()) {
        let ctx = context_for(&dataset);
        prop_assume!(ctx.num_groups() >= 2);
        let params = ProblemParams { k: 3, min_support: 1, user_threshold: 0.0, item_threshold: 0.0 };
        let problem = catalog::problem_4(params);
        for outcome in [
            DvFdpSolver::new(ConstraintMode::Filter).solve(&ctx, &problem),
            DvFdpSolver::new(ConstraintMode::Fold).solve(&ctx, &problem),
            SmLshSolver::new(ConstraintMode::Filter).solve(&ctx, &problem),
        ] {
            let mut seen = std::collections::HashSet::new();
            for &g in &outcome.groups {
                prop_assert!(g < ctx.num_groups());
                prop_assert!(seen.insert(g), "duplicate group index in outcome");
            }
            prop_assert!(outcome.groups.len() <= problem.max_groups);
        }
    }

    #[test]
    fn objective_is_monotone_in_objective_weights(dataset in arbitrary_dataset()) {
        let ctx = context_for(&dataset);
        prop_assume!(ctx.num_groups() >= 2);
        let params = ProblemParams { k: 2, min_support: 1, user_threshold: 0.0, item_threshold: 0.0 };
        let mut problem = catalog::problem_1(params);
        let set: Vec<usize> = vec![0, 1];
        let base = problem.objective(&ctx, &set);
        problem.objectives[0].weight = 2.0;
        let doubled = problem.objective(&ctx, &set);
        prop_assert!((doubled - 2.0 * base).abs() < 1e-9);
    }
}
