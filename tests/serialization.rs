//! Serialization integration tests: datasets, problems and solver outcomes round-trip
//! through JSON, so experiment inputs and results can be archived and reloaded.

use tagdm::prelude::*;
use tagdm_data::io;

fn small_dataset() -> Dataset {
    MovieLensStyleGenerator::new(GeneratorConfig::small().with_actions(300)).generate()
}

#[test]
fn dataset_roundtrips_through_json() {
    let dataset = small_dataset();
    let json = io::to_json(&dataset).unwrap();
    let restored = io::from_json(&json).unwrap();
    assert_eq!(restored.num_users(), dataset.num_users());
    assert_eq!(restored.num_items(), dataset.num_items());
    assert_eq!(restored.num_actions(), dataset.num_actions());
    assert_eq!(restored.num_tags(), dataset.num_tags());
    assert_eq!(restored.actions, dataset.actions);
    // The rebuilt indices answer lookups identically.
    assert_eq!(
        restored.user_schema.attribute_id("occupation"),
        dataset.user_schema.attribute_id("occupation")
    );
    // Mining over the restored dataset yields identical groups.
    let scheme = [("user", "gender"), ("item", "genre")];
    let original_groups = GroupingScheme::over(&dataset, &scheme)
        .unwrap()
        .enumerate(&dataset);
    let restored_groups = GroupingScheme::over(&restored, &scheme)
        .unwrap()
        .enumerate(&restored);
    assert_eq!(original_groups, restored_groups);
}

#[test]
fn problems_and_outcomes_roundtrip_through_serde() {
    let params = ProblemParams {
        k: 3,
        min_support: 7,
        user_threshold: 0.5,
        item_threshold: 0.4,
    };
    for problem in catalog::canonical_problems(params) {
        let json = serde_json::to_string(&problem).unwrap();
        let restored: TagDmProblem = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, problem);
    }

    // A real solver outcome survives the round trip too.
    let dataset = small_dataset();
    let groups = GroupingScheme::over(&dataset, &[("user", "gender"), ("item", "genre")])
        .unwrap()
        .enumerate(&dataset);
    let ctx = MiningContext::build(&dataset, groups, SummarizerChoice::Frequency);
    let problem = catalog::problem_6(ProblemParams {
        k: 2,
        min_support: 1,
        user_threshold: 0.0,
        item_threshold: 0.0,
    });
    let outcome = DvFdpSolver::new(ConstraintMode::Fold).solve(&ctx, &problem);
    let json = serde_json::to_string(&outcome).unwrap();
    let restored: SolverOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, outcome);

    let report = evaluation::evaluate(&ctx, &problem, &outcome);
    let json = serde_json::to_string(&report).unwrap();
    let restored: QualityReport = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, report);
}

#[test]
fn tag_signatures_and_generator_configs_roundtrip() {
    let signature = TagSignature::from_entries(25, vec![(0, 0.4), (7, 0.3), (24, 0.3)]);
    let json = serde_json::to_string(&signature).unwrap();
    let restored: TagSignature = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, signature);

    let config = GeneratorConfig::paper_scale();
    let json = serde_json::to_string(&config).unwrap();
    let restored: GeneratorConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, config);
    // A re-loaded config generates the identical corpus (full provenance).
    let small = GeneratorConfig::small().with_actions(100);
    let a = MovieLensStyleGenerator::new(small.clone()).generate();
    let b = MovieLensStyleGenerator::new(
        serde_json::from_str(&serde_json::to_string(&small).unwrap()).unwrap(),
    )
    .generate();
    assert_eq!(a.actions, b.actions);
}
