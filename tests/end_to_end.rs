//! Cross-crate integration tests: the full TagDM pipeline from synthetic corpus
//! generation through group enumeration, LDA tag signatures and every solver family,
//! on all six canonical problems of Table 1.

use tagdm::prelude::*;
use tagdm_core::solvers::recommend;

fn pipeline_context() -> (Dataset, MiningContext, ProblemParams) {
    let dataset = MovieLensStyleGenerator::new(GeneratorConfig::small()).generate();
    let groups = GroupingScheme::over(
        &dataset,
        &[("user", "gender"), ("user", "age"), ("item", "genre")],
    )
    .unwrap()
    .min_group_size(5)
    .enumerate(&dataset);
    assert!(
        groups.len() >= 10,
        "small corpus should yield a healthy group count"
    );
    let ctx = MiningContext::build(&dataset, groups, SummarizerChoice::fast_lda(10));
    let params = ProblemParams {
        k: 3,
        min_support: dataset.num_actions() / 100,
        user_threshold: 0.3,
        item_threshold: 0.3,
    };
    (dataset, ctx, params)
}

#[test]
fn all_canonical_problems_are_solvable_end_to_end() {
    let (_dataset, ctx, params) = pipeline_context();
    let exact = ExactSolver::new();
    for (i, problem) in catalog::canonical_problems(params).iter().enumerate() {
        problem.validate().unwrap();
        let exact_outcome = exact.solve(&ctx, problem);
        let recommended = recommend(problem);
        let heuristic_outcome = recommended.solve(&ctx, problem);

        // Whenever the exact solver finds a feasible optimum, the recommended heuristic
        // must find *something* and never beat the optimum.
        if !exact_outcome.is_null() {
            assert!(
                !heuristic_outcome.is_null(),
                "problem {} ({}): heuristic {} returned null although a feasible set exists",
                i + 1,
                problem.describe(),
                recommended.name()
            );
            assert!(
                heuristic_outcome.objective <= exact_outcome.objective + 1e-9,
                "problem {}: heuristic beat the exact optimum",
                i + 1
            );
            assert!(heuristic_outcome.feasible);
            assert!(heuristic_outcome.groups.len() <= params.k);
            // Diversity problems come with the paper's factor-4 guarantee; similarity
            // problems have no formal bound but should stay within a factor 2 here.
            let ratio = if exact_outcome.objective > 0.0 {
                heuristic_outcome.objective / exact_outcome.objective
            } else {
                1.0
            };
            assert!(
                ratio >= 0.25,
                "problem {}: heuristic quality ratio {ratio:.3} is implausibly poor",
                i + 1
            );
        }
    }
}

#[test]
fn lsh_and_fdp_families_cover_their_respective_problems() {
    let (_dataset, ctx, params) = pipeline_context();
    // Problems 1-3 (similarity): SM-LSH variants return feasible results.
    for pid in 1..=3 {
        let problem = catalog::problem(pid, params);
        for mode in [ConstraintMode::Filter, ConstraintMode::Fold] {
            let outcome = SmLshSolver::new(mode).solve(&ctx, &problem);
            if !outcome.is_null() {
                assert!(
                    problem.feasible(&ctx, &outcome.groups),
                    "problem {pid} {mode:?}"
                );
            }
        }
    }
    // Problems 4-6 (diversity): DV-FDP variants return feasible results.
    for pid in 4..=6 {
        let problem = catalog::problem(pid, params);
        let outcome = DvFdpSolver::new(ConstraintMode::Fold).solve(&ctx, &problem);
        if !outcome.is_null() {
            assert!(problem.feasible(&ctx, &outcome.groups), "problem {pid}");
        }
    }
}

#[test]
fn pipeline_is_deterministic_from_seed_to_solution() {
    let run = || {
        let (_d, ctx, params) = pipeline_context();
        let problem = catalog::problem_6(params);
        DvFdpSolver::new(ConstraintMode::Fold)
            .solve(&ctx, &problem)
            .groups
    };
    assert_eq!(run(), run());
}

#[test]
fn support_and_constraints_are_honoured_by_returned_sets() {
    let (_dataset, ctx, params) = pipeline_context();
    for problem in catalog::canonical_problems(params) {
        let outcome = recommend(&problem).solve(&ctx, &problem);
        if outcome.is_null() {
            continue;
        }
        assert!(ctx.support(&outcome.groups) >= problem.min_support);
        assert!(problem.constraints_satisfied(&ctx, &outcome.groups));
        for &g in &outcome.groups {
            assert!(g < ctx.num_groups());
            assert!(
                !ctx.group(g).description.is_empty(),
                "groups must stay describable"
            );
        }
    }
}

#[test]
fn quality_reports_match_recomputed_scores() {
    let (_dataset, ctx, params) = pipeline_context();
    let problem = catalog::problem_1(params);
    let outcome = SmLshSolver::new(ConstraintMode::Fold).solve(&ctx, &problem);
    let report = evaluation::evaluate(&ctx, &problem, &outcome);
    if !outcome.is_null() {
        let recomputed = ctx.set_score(
            &outcome.groups,
            TaggingDimension::Tags,
            MiningCriterion::Similarity,
            PairwiseKind::TagCosine,
            Aggregator::Mean,
        );
        assert!((report.avg_pairwise_tag_similarity - recomputed).abs() < 1e-12);
        assert!((report.objective - problem.objective(&ctx, &outcome.groups)).abs() < 1e-12);
    }
}
